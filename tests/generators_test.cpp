// Tests for the synthetic graph generators, including parameterised
// property sweeps over (n, d) for the configuration-model generator and
// the planted-cluster instance.
#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgc;
using graph::ClusteredRegularSpec;
using graph::Graph;
using graph::NodeId;

TEST(RandomRegular, RejectsInfeasibleParameters) {
  util::Rng rng(1);
  EXPECT_THROW(graph::random_regular(5, 3, rng), util::contract_error);  // odd n*d
  EXPECT_THROW(graph::random_regular(4, 4, rng), util::contract_error);  // d >= n
  EXPECT_THROW(graph::random_regular(4, 0, rng), util::contract_error);
}

TEST(RandomRegular, DeterministicForEqualSeeds) {
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  const Graph a = graph::random_regular(64, 6, rng_a);
  const Graph b = graph::random_regular(64, 6, rng_b);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < 64; ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

class RandomRegularSweep : public ::testing::TestWithParam<std::tuple<NodeId, std::size_t>> {};

TEST_P(RandomRegularSweep, ProducesSimpleRegularGraph) {
  const auto [n, d] = GetParam();
  util::Rng rng(42 + n + d);
  const Graph g = graph::random_regular(n, d, rng);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(n) * d / 2);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.max_degree(), d);
}

TEST_P(RandomRegularSweep, IsConnectedForDegreeAtLeastThree) {
  const auto [n, d] = GetParam();
  if (d < 3) GTEST_SKIP() << "connectivity only guaranteed whp for d >= 3";
  util::Rng rng(1000 + n * 31 + d);
  EXPECT_TRUE(graph::is_connected(graph::random_regular(n, d, rng)));
}

INSTANTIATE_TEST_SUITE_P(
    NDegreeGrid, RandomRegularSweep,
    ::testing::Values(std::make_tuple(16u, 3u), std::make_tuple(16u, 8u),
                      std::make_tuple(64u, 4u), std::make_tuple(64u, 16u),
                      std::make_tuple(128u, 3u), std::make_tuple(128u, 12u),
                      std::make_tuple(500u, 6u), std::make_tuple(501u, 8u),
                      std::make_tuple(1024u, 10u)));

TEST(ClusteredRegular, ExactRegularityAndCut) {
  ClusteredRegularSpec spec;
  spec.cluster_sizes = {100, 100, 100, 100};
  spec.degree = 12;
  spec.inter_cluster_swaps = 50;
  util::Rng rng(7);
  const auto planted = graph::clustered_regular(spec, rng);
  EXPECT_TRUE(planted.graph.is_regular());
  EXPECT_EQ(planted.graph.max_degree(), 12u);
  EXPECT_EQ(planted.graph.num_nodes(), 400u);
  // Each swap converts two intra edges into two inter edges.
  std::size_t inter = 0;
  planted.graph.for_each_edge([&](NodeId u, NodeId v) {
    if (planted.membership[u] != planted.membership[v]) ++inter;
  });
  EXPECT_EQ(inter, 100u);
}

TEST(ClusteredRegular, ZeroSwapsGivesDisconnectedClusters) {
  ClusteredRegularSpec spec;
  spec.cluster_sizes = {50, 50};
  spec.degree = 8;
  spec.inter_cluster_swaps = 0;
  util::Rng rng(3);
  const auto planted = graph::clustered_regular(spec, rng);
  EXPECT_EQ(graph::num_components(planted.graph), 2u);
  EXPECT_EQ(graph::rho(planted.graph, planted.membership, 2), 0.0);
}

TEST(ClusteredRegular, RingTopologyOnlyLinksNeighbours) {
  ClusteredRegularSpec spec;
  spec.cluster_sizes = {60, 60, 60, 60};
  spec.degree = 10;
  spec.inter_cluster_swaps = 40;
  spec.topology = ClusteredRegularSpec::Topology::kRing;
  util::Rng rng(11);
  const auto planted = graph::clustered_regular(spec, rng);
  planted.graph.for_each_edge([&](NodeId u, NodeId v) {
    const auto cu = planted.membership[u];
    const auto cv = planted.membership[v];
    if (cu == cv) return;
    const auto diff = (cu + 4 - cv) % 4;
    EXPECT_TRUE(diff == 1 || diff == 3) << "clusters " << cu << " and " << cv;
  });
}

TEST(ClusteredRegular, SiblingTierNestsSubClustersInParentGroups) {
  // Two-tier instance: 6 sub-clusters paired into 3 parent groups.  Both
  // rewiring tiers must hold exactly — sibling swaps land within a
  // group, inter swaps across groups, regularity untouched.
  ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(6, 80);
  spec.degree = 10;
  spec.sibling_group_size = 2;
  spec.sibling_swaps = 30;
  spec.inter_cluster_swaps = 40;
  util::Rng rng(19);
  const auto planted = graph::clustered_regular(spec, rng);
  EXPECT_TRUE(planted.graph.is_regular());
  EXPECT_EQ(planted.graph.max_degree(), 10u);
  std::size_t sibling_edges = 0;
  std::size_t inter_group_edges = 0;
  planted.graph.for_each_edge([&](NodeId u, NodeId v) {
    const auto cu = planted.membership[u];
    const auto cv = planted.membership[v];
    if (cu == cv) return;
    if (cu / 2 == cv / 2) {
      ++sibling_edges;
    } else {
      ++inter_group_edges;
    }
  });
  // Each swap converts two intra edges into two cross edges of its tier.
  EXPECT_EQ(sibling_edges, 2 * spec.sibling_swaps);
  EXPECT_EQ(inter_group_edges, 2 * spec.inter_cluster_swaps);
}

TEST(ClusteredRegular, SiblingGroupSizeOneIsBitIdenticalToFlat) {
  // gs = 1 must reduce to the flat instance on the same Rng stream —
  // existing seeds and recorded experiments cannot move.
  ClusteredRegularSpec flat;
  flat.cluster_sizes.assign(4, 64);
  flat.degree = 8;
  flat.inter_cluster_swaps = 25;
  ClusteredRegularSpec tiered = flat;
  tiered.sibling_group_size = 1;
  tiered.sibling_swaps = 0;
  util::Rng rng_flat(23);
  util::Rng rng_tiered(23);
  const auto a = graph::clustered_regular(flat, rng_flat);
  const auto b = graph::clustered_regular(tiered, rng_tiered);
  EXPECT_EQ(a.membership, b.membership);
  std::vector<std::pair<NodeId, NodeId>> ea;
  std::vector<std::pair<NodeId, NodeId>> eb;
  a.graph.for_each_edge([&](NodeId u, NodeId v) { ea.emplace_back(u, v); });
  b.graph.for_each_edge([&](NodeId u, NodeId v) { eb.emplace_back(u, v); });
  EXPECT_EQ(ea, eb);
}

TEST(ClusteredRegular, SiblingTierRejectsBadSpecs) {
  ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(4, 40);
  spec.degree = 8;
  util::Rng rng(29);
  // Group size must divide the cluster count…
  spec.sibling_group_size = 3;
  spec.sibling_swaps = 5;
  EXPECT_THROW((void)graph::clustered_regular(spec, rng), util::contract_error);
  // …sibling swaps need a group size > 1…
  spec.sibling_group_size = 1;
  spec.sibling_swaps = 5;
  EXPECT_THROW((void)graph::clustered_regular(spec, rng), util::contract_error);
  // …and the two-tier variant is kComplete-only.
  spec.sibling_group_size = 2;
  spec.topology = ClusteredRegularSpec::Topology::kRing;
  EXPECT_THROW((void)graph::clustered_regular(spec, rng), util::contract_error);
}

TEST(ClusteredRegular, SwapsForConductanceHitsTarget) {
  ClusteredRegularSpec spec;
  spec.cluster_sizes = {200, 200, 200, 200};
  spec.degree = 16;
  const double target = 0.05;
  spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, target);
  util::Rng rng(13);
  const auto planted = graph::clustered_regular(spec, rng);
  const double rho = graph::rho(planted.graph, planted.membership, 4);
  EXPECT_GT(rho, target / 2.0);
  EXPECT_LT(rho, target * 2.0);
}

class ClusteredSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(ClusteredSweep, InvariantsHold) {
  const auto [k, size, swaps] = GetParam();
  ClusteredRegularSpec spec;
  spec.cluster_sizes.assign(k, static_cast<NodeId>(size));
  spec.degree = 8;
  spec.inter_cluster_swaps = swaps;
  util::Rng rng(17 + k * 7 + size + swaps);
  const auto planted = graph::clustered_regular(spec, rng);
  EXPECT_TRUE(planted.graph.is_regular());
  EXPECT_EQ(planted.graph.max_degree(), 8u);
  EXPECT_EQ(planted.num_clusters, k);
  EXPECT_NEAR(planted.beta(), 1.0 / static_cast<double>(k), 1e-9);
  std::size_t inter = 0;
  planted.graph.for_each_edge([&](NodeId u, NodeId v) {
    if (planted.membership[u] != planted.membership[v]) ++inter;
  });
  EXPECT_EQ(inter, 2 * swaps);
}

INSTANTIATE_TEST_SUITE_P(KSizeSwaps, ClusteredSweep,
                         ::testing::Values(std::make_tuple(2u, 64u, 8u),
                                           std::make_tuple(3u, 64u, 12u),
                                           std::make_tuple(4u, 128u, 30u),
                                           std::make_tuple(5u, 64u, 20u),
                                           std::make_tuple(8u, 32u, 16u)));

TEST(Sbm, BlockStructureAndDegrees) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 300;
  spec.clusters = 3;
  spec.p_in = 0.08;
  spec.p_out = 0.002;
  util::Rng rng(23);
  const auto planted = graph::stochastic_block_model(spec, rng);
  EXPECT_EQ(planted.graph.num_nodes(), 900u);
  // Expected intra edges per block: C(300,2)*p_in ≈ 3588; inter per pair:
  // 300*300*0.002 = 180.
  std::size_t intra = 0;
  std::size_t inter = 0;
  planted.graph.for_each_edge([&](NodeId u, NodeId v) {
    if (planted.membership[u] == planted.membership[v]) {
      ++intra;
    } else {
      ++inter;
    }
  });
  EXPECT_NEAR(static_cast<double>(intra), 3 * 3588.0, 600.0);
  EXPECT_NEAR(static_cast<double>(inter), 3 * 180.0, 120.0);
}

TEST(Sbm, ExtremeProbabilities) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 10;
  spec.clusters = 2;
  spec.p_in = 1.0;
  spec.p_out = 0.0;
  util::Rng rng(29);
  const auto planted = graph::stochastic_block_model(spec, rng);
  // Two disjoint K10s.
  EXPECT_EQ(planted.graph.num_edges(), 2u * 45u);
  EXPECT_EQ(graph::num_components(planted.graph), 2u);
}

TEST(ClusteredRegular, WeightedVariantKeepsStructureAndMapsWeights) {
  ClusteredRegularSpec spec;
  spec.cluster_sizes = {60, 60};
  spec.degree = 8;
  spec.inter_cluster_swaps = 12;
  util::Rng rng_plain(7);
  const auto plain = graph::clustered_regular(spec, rng_plain);
  spec.weighted = true;
  spec.intra_weight = 5.0;
  spec.inter_weight = 0.5;
  util::Rng rng_weighted(7);
  const auto weighted = graph::clustered_regular(spec, rng_weighted);
  // Same Rng stream, same spec: identical adjacency, weights on top.
  ASSERT_TRUE(weighted.graph.is_weighted());
  ASSERT_EQ(weighted.graph.adjacency().size(), plain.graph.adjacency().size());
  for (std::size_t i = 0; i < plain.graph.adjacency().size(); ++i) {
    ASSERT_EQ(weighted.graph.adjacency()[i], plain.graph.adjacency()[i]);
  }
  weighted.graph.for_each_weighted_edge([&](NodeId u, NodeId v, double w) {
    EXPECT_EQ(w, weighted.membership[u] == weighted.membership[v] ? 5.0 : 0.5);
  });
  EXPECT_EQ(weighted.graph.max_weight(), 5.0);
}

TEST(Sbm, WeightedVariantKeepsStructureAndMapsWeights) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 80;
  spec.clusters = 3;
  spec.p_in = 0.1;
  spec.p_out = 0.01;
  util::Rng rng_plain(31);
  const auto plain = graph::stochastic_block_model(spec, rng_plain);
  spec.weighted = true;
  spec.intra_weight = 2.0;
  spec.inter_weight = 0.25;
  util::Rng rng_weighted(31);
  const auto weighted = graph::stochastic_block_model(spec, rng_weighted);
  ASSERT_TRUE(weighted.graph.is_weighted());
  ASSERT_EQ(weighted.graph.num_edges(), plain.graph.num_edges());
  weighted.graph.for_each_weighted_edge([&](NodeId u, NodeId v, double w) {
    EXPECT_EQ(w, weighted.membership[u] == weighted.membership[v] ? 2.0 : 0.25);
  });
}

TEST(Generators, WeightedSpecRejectsBadWeights) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 10;
  spec.clusters = 2;
  spec.p_in = 0.5;
  spec.weighted = true;
  spec.intra_weight = 0.0;
  util::Rng rng(5);
  EXPECT_THROW(graph::stochastic_block_model(spec, rng), util::contract_error);
  ClusteredRegularSpec cspec;
  cspec.cluster_sizes = {20, 20};
  cspec.degree = 4;
  cspec.weighted = true;
  cspec.inter_weight = -1.0;
  EXPECT_THROW(graph::clustered_regular(cspec, rng), util::contract_error);
}

TEST(Sbm, RejectsBadProbabilities) {
  graph::SbmSpec spec;
  spec.nodes_per_cluster = 10;
  spec.clusters = 2;
  spec.p_in = 1.5;
  util::Rng rng(1);
  EXPECT_THROW(graph::stochastic_block_model(spec, rng), util::contract_error);
}

TEST(RingOfCliques, StructureIsCorrect) {
  const auto planted = graph::ring_of_cliques(4, 5);
  EXPECT_EQ(planted.graph.num_nodes(), 20u);
  // 4 * C(5,2) internal + 4 bridges.
  EXPECT_EQ(planted.graph.num_edges(), 4u * 10u + 4u);
  EXPECT_TRUE(graph::is_connected(planted.graph));
  EXPECT_EQ(planted.num_clusters, 4u);
}

TEST(RingOfCliques, TwoCliquesUseDisjointBridges) {
  const auto planted = graph::ring_of_cliques(2, 4);
  EXPECT_EQ(planted.graph.num_edges(), 2u * 6u + 2u);
  EXPECT_TRUE(graph::is_connected(planted.graph));
}

TEST(AlmostRegular, DegreeRatioBounded) {
  ClusteredRegularSpec spec;
  spec.cluster_sizes = {200, 200};
  spec.degree = 20;
  spec.inter_cluster_swaps = 20;
  util::Rng rng(31);
  const auto planted = graph::almost_regular_clusters(spec, 0.1, rng);
  EXPECT_LT(planted.graph.max_degree(), 21u);
  EXPECT_GT(planted.graph.min_degree(), 10u);  // Binomial(20, 0.9) tail
  const double ratio = static_cast<double>(planted.graph.max_degree()) /
                       static_cast<double>(planted.graph.min_degree());
  EXPECT_LT(ratio, 2.0);
}

TEST(Fixtures, PathCycleCompleteStar) {
  EXPECT_EQ(graph::path(5).num_edges(), 4u);
  EXPECT_EQ(graph::cycle(5).num_edges(), 5u);
  EXPECT_EQ(graph::complete(5).num_edges(), 10u);
  EXPECT_EQ(graph::star(5).num_edges(), 4u);
  EXPECT_TRUE(graph::cycle(9).is_regular());
}

}  // namespace
