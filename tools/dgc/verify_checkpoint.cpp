// `dgc verify-checkpoint` — fault detection for long checkpointed runs.
//
// Loads a .dgcc checkpoint (format, CRC and fingerprint validation) and
// replays its first r rounds from the config's coins alone — the run
// state is a pure function of (graph, config, round), so a clean
// checkpoint must match the replay bit for bit.  Any divergence (a
// flipped bit on disk that still passed CRC by collision, a corrupted
// in-memory matrix that was checkpointed, a miscompiled kernel on one
// machine of a fleet) is pinpointed to its (node, dimension).
#include <cstdio>
#include <iostream>
#include <string>

#include "commands.hpp"
#include "core/checkpoint.hpp"
#include "graph/io.hpp"
#include "util/require.hpp"

namespace dgc::tools {

int run_verify_checkpoint(util::Cli& cli) {
  cli.describe("in", "", "graph file the run clusters (required)");
  cli.describe("format", "auto", "input format: auto|edges|metis|binary");
  cli.describe("weights", "auto",
               "edge-list weight column: auto (header-driven)|yes|no");
  cli.describe("checkpoint", "", "checkpoint file (.dgcc) to verify (required)");
  describe_cluster_config(cli);
  if (cli.help_requested()) {
    std::cout << "usage: dgc verify-checkpoint --in=GRAPH --checkpoint=FILE "
                 "[--config flags of the run]\n\n";
    cli.print_help(std::cout);
    return 0;
  }

  const std::string in = cli.get("in", "");
  const auto format = graph::parse_format(cli.get("format", "auto"));
  const auto weights = graph::parse_weight_mode(cli.get("weights", "auto"));
  const std::string checkpoint_path = cli.get("checkpoint", "");
  const core::ClusterConfig config = parse_cluster_config(cli);
  cli.reject_unknown();
  DGC_REQUIRE(!in.empty(), "--in is required");
  DGC_REQUIRE(!checkpoint_path.empty(), "--checkpoint is required");

  const graph::Graph g = graph::load_graph(in, format, weights);
  const core::Checkpoint cp = core::load_checkpoint_file(checkpoint_path);
  std::printf("checkpoint        %s\n", checkpoint_path.c_str());
  std::printf("round             %llu / %llu\n",
              static_cast<unsigned long long>(cp.round),
              static_cast<unsigned long long>(cp.total_rounds));
  std::printf("matrix            %llu x %llu\n",
              static_cast<unsigned long long>(cp.num_nodes),
              static_cast<unsigned long long>(cp.dimensions));

  const core::CheckpointVerification v = core::verify_checkpoint(g, config, cp);
  if (v.ok) {
    std::printf("verdict           OK (replay matches bit for bit)\n");
    return 0;
  }
  if (!v.error.empty()) {
    std::printf("verdict           FAILED: %s\n", v.error.c_str());
    return 1;
  }
  std::printf("verdict           DIVERGED: %llu entries differ\n",
              static_cast<unsigned long long>(v.mismatches));
  std::printf("first divergence  node %llu, dimension %llu\n",
              static_cast<unsigned long long>(v.node),
              static_cast<unsigned long long>(v.dimension));
  std::printf("expected          %.17g\n", v.expected);
  std::printf("found             %.17g\n", v.found);
  return 1;
}

}  // namespace dgc::tools
