// `dgc partition` — graph file in, per-node shard assignment out.
// Runs one of the three deterministic partitioners (range | bfs |
// refined — graph/partitioner.hpp) and reports the quality numbers the
// sharded engine's traffic scales with: edge cut, cut weight, node and
// volume imbalance, boundary nodes, and a per-round mailbox word bound.
// The shard file (one shard id per node line) feeds back into
// `dgc cluster --partition_file=...`.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "commands.hpp"
#include "graph/io.hpp"
#include "graph/partitioner.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace dgc::tools {

namespace {

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

graph::Partition load_partition_file(const std::string& path, graph::NodeId num_nodes,
                                     std::uint32_t num_shards_hint) {
  std::ifstream is(path);
  DGC_REQUIRE(is.good(), "cannot open partition file: " + path);
  graph::Partition p;
  p.shard_of.reserve(num_nodes);
  std::uint64_t value = 0;
  std::uint32_t max_seen = 0;
  while (is >> value) {
    DGC_REQUIRE(value < num_nodes, "shard id out of range in " + path);
    const auto s = static_cast<std::uint32_t>(value);
    max_seen = std::max(max_seen, s);
    p.shard_of.push_back(s);
  }
  DGC_REQUIRE(is.eof(), "malformed partition file (expected integers): " + path);
  DGC_REQUIRE(p.shard_of.size() == num_nodes,
              "partition file has " + std::to_string(p.shard_of.size()) +
                  " entries for a graph of " + std::to_string(num_nodes) + " nodes: " +
                  path);
  p.num_shards = num_shards_hint != 0 ? num_shards_hint : max_seen + 1;
  graph::validate_partition(p, num_nodes);
  return p;
}

int run_partition(util::Cli& cli) {
  cli.describe("in", "", "input graph file (required)");
  cli.describe("format", "auto", "input format: auto|edges|metis|binary");
  cli.describe("weights", "auto",
               "edge-list weight column: auto (header-driven)|yes|no");
  cli.describe("shards", "0", "number of shards P (required, >= 1)");
  cli.describe("partition", "refined", "partitioner: range|bfs|refined");
  cli.describe("balance", "nodes",
               "refined balance objective: nodes (±1 contract)|volume");
  cli.describe("volume_tolerance", "1.05",
               "admissible volume imbalance for --balance=volume");
  cli.describe("pg", "1", "refined: projected-gradient sweep at the coarsest level");
  cli.describe("fm_passes", "8", "refined: refinement passes per level");
  cli.describe("dims", "0",
               "load-vector entries s for the mailbox word bound (0 = skip)");
  cli.describe("out", "", "write one shard id per node line");
  cli.describe("json", "", "write a machine-readable summary");
  if (cli.help_requested()) {
    std::cout << "usage: dgc partition --in=FILE --shards=P [--flags]\n\n";
    cli.print_help(std::cout);
    return 0;
  }

  const std::string in = cli.get("in", "");
  const auto format = graph::parse_format(cli.get("format", "auto"));
  const auto weights = graph::parse_weight_mode(cli.get("weights", "auto"));
  const auto shards = static_cast<std::uint32_t>(cli.get_uint64("shards", 0));
  const std::string mode_name = cli.get("partition", "refined");
  const std::string balance = cli.get("balance", "nodes");
  graph::RefineOptions refine;
  refine.volume_tolerance = cli.get_double("volume_tolerance", refine.volume_tolerance);
  refine.projected_gradient = cli.get_bool("pg", true);
  refine.max_fm_passes = cli.get_uint64("fm_passes", refine.max_fm_passes);
  const std::uint64_t dims = cli.get_uint64("dims", 0);
  const std::string out_path = cli.get("out", "");
  const std::string json_out = cli.get("json", "");
  cli.reject_unknown();
  DGC_REQUIRE(!in.empty(), "--in is required");
  DGC_REQUIRE(shards >= 1, "--shards is required (>= 1)");
  const graph::PartitionMode mode = graph::parse_partition_mode(mode_name);
  if (balance == "nodes") {
    refine.objective = graph::BalanceObjective::kNodes;
  } else if (balance == "volume") {
    refine.objective = graph::BalanceObjective::kVolume;
  } else {
    DGC_REQUIRE(false, "unknown --balance: " + balance + " (expected nodes|volume)");
  }

  util::Timer timer;
  const graph::Graph g = graph::load_graph(in, format, weights);
  const double load_seconds = timer.seconds();
  timer.reset();
  const graph::Partition p = mode == graph::PartitionMode::kRefined
                                 ? graph::refine_partition(g, shards, refine)
                                 : graph::partition_graph(g, shards, mode);
  const double partition_seconds = timer.seconds();
  const auto profile = metrics::partition_profile(g, p.shard_of, shards);
  // If every cut edge were matched in one round, both endpoints' dense
  // s-entry rows would cross the mailbox: 2 * cut * (1 + 2s) words — an
  // upper bound on the sharded engine's per-round cross-shard traffic.
  const std::uint64_t word_bound =
      dims > 0 ? 2 * profile.cut_edges * (1 + 2 * dims) : 0;

  if (!out_path.empty()) {
    std::ofstream os(out_path, std::ios::trunc);
    DGC_REQUIRE(os.good(), "cannot open for writing: " + out_path);
    for (const std::uint32_t s : p.shard_of) os << s << '\n';
    DGC_REQUIRE(os.good(), "failed to write: " + out_path);
  }

  std::printf("file              %s\n", in.c_str());
  std::printf("nodes             %u\n", g.num_nodes());
  std::printf("edges             %zu\n", g.num_edges());
  std::printf("weighted          %s\n", g.is_weighted() ? "yes" : "no");
  std::printf("mode              %s\n", std::string(graph::partition_mode_name(mode)).c_str());
  std::printf("shards            %u\n", shards);
  if (mode == graph::PartitionMode::kRefined) {
    std::printf("balance           %s\n", balance.c_str());
  }
  std::printf("edge_cut          %llu\n",
              static_cast<unsigned long long>(profile.cut_edges));
  std::printf("cut_weight        %.6g\n", profile.cut_weight);
  std::printf("boundary_nodes    %llu\n",
              static_cast<unsigned long long>(profile.boundary_nodes));
  std::printf("imbalance         %.4f\n", profile.imbalance);
  std::printf("imbalance_volume  %.4f\n", profile.imbalance_volume);
  if (dims > 0) {
    std::printf("word_bound/round  %llu  (s=%llu dims)\n",
                static_cast<unsigned long long>(word_bound),
                static_cast<unsigned long long>(dims));
  }
  std::printf("load_seconds      %.3f\n", load_seconds);
  std::printf("partition_seconds %.3f\n", partition_seconds);
  if (!out_path.empty()) std::printf("wrote %s\n", out_path.c_str());

  if (!json_out.empty()) {
    std::string out;
    out += "{\n  \"tool\": \"dgc-partition\",\n  \"input\": ";
    append_json_string(out, in);
    out += ",\n  \"mode\": ";
    append_json_string(out, std::string(graph::partition_mode_name(mode)));
    out += ",\n  \"balance\": ";
    append_json_string(out, balance);
    out += ",\n  \"shards\": " + std::to_string(shards);
    out += ",\n  \"nodes\": " + std::to_string(g.num_nodes());
    out += ",\n  \"edges\": " + std::to_string(g.num_edges());
    out += ",\n  \"weighted\": ";
    out += g.is_weighted() ? "true" : "false";
    out += ",\n  \"edge_cut\": " + std::to_string(profile.cut_edges);
    out += ",\n  \"cut_weight\": ";
    append_json_double(out, profile.cut_weight);
    out += ",\n  \"boundary_nodes\": " + std::to_string(profile.boundary_nodes);
    out += ",\n  \"imbalance\": ";
    append_json_double(out, profile.imbalance);
    out += ",\n  \"imbalance_volume\": ";
    append_json_double(out, profile.imbalance_volume);
    out += ",\n  \"dims\": " + std::to_string(dims);
    out += ",\n  \"word_bound_per_round\": " + std::to_string(word_bound);
    out += ",\n  \"timing\": {\n    \"load_seconds\": ";
    append_json_double(out, load_seconds);
    out += ",\n    \"partition_seconds\": ";
    append_json_double(out, partition_seconds);
    out += "\n  },\n  \"shard_profiles\": [";
    for (std::uint32_t s = 0; s < shards; ++s) {
      const auto& sp = profile.shards[s];
      out += s == 0 ? "\n" : ",\n";
      out += "    {\"shard\": " + std::to_string(s);
      out += ", \"nodes\": " + std::to_string(sp.nodes);
      out += ", \"volume\": ";
      append_json_double(out, sp.volume);
      out += ", \"boundary_nodes\": " + std::to_string(sp.boundary_nodes);
      out += ", \"internal_edges\": " + std::to_string(sp.internal_edges);
      out += ", \"cut_edges\": " + std::to_string(sp.cut_edges);
      out += ", \"cut_weight\": ";
      append_json_double(out, sp.cut_weight);
      out += "}";
    }
    out += "\n  ]\n}\n";
    std::ofstream os(json_out, std::ios::trunc);
    DGC_REQUIRE(os.good(), "cannot open for writing: " + json_out);
    os << out;
    DGC_REQUIRE(os.good(), "failed to write: " + json_out);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace dgc::tools
