// The `dgc` driver's subcommands.  Each takes the already-parsed Cli,
// registers its flag table (describe), honours --help, rejects unknown
// flags, and returns a process exit code.  main.cpp dispatches on the
// verb and converts contract_error into a clean stderr message.
#pragma once

#include "util/cli.hpp"

namespace dgc::tools {

/// `dgc generate` — synthesize a planted instance to a graph file.
int run_generate(util::Cli& cli);

/// `dgc convert` — re-serialise a graph file into another format.
int run_convert(util::Cli& cli);

/// `dgc stats` — n / m / degree profile / regularity of a graph file.
int run_stats(util::Cli& cli);

/// `dgc cluster` — run an engine on a graph file; labels + JSON out.
int run_cluster(util::Cli& cli);

}  // namespace dgc::tools
