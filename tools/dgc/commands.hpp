// The `dgc` driver's subcommands.  Each takes the already-parsed Cli,
// registers its flag table (describe), honours --help, rejects unknown
// flags, and returns a process exit code.  main.cpp dispatches on the
// verb and converts contract_error into a clean stderr message.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "graph/partitioner.hpp"
#include "util/cli.hpp"

namespace dgc::tools {

/// Registers the ClusterConfig flag table shared by `cluster` and
/// `verify-checkpoint` (beta, rounds, seed, protocol, hot-path knobs).
void describe_cluster_config(util::Cli& cli);

/// Parses the flags registered by describe_cluster_config.  When
/// `rule_name` is non-null it receives the --rule spelling (for JSON
/// echo-back).
[[nodiscard]] core::ClusterConfig parse_cluster_config(util::Cli& cli,
                                                       std::string* rule_name = nullptr);

/// `dgc generate` — synthesize a planted instance to a graph file.
int run_generate(util::Cli& cli);

/// `dgc convert` — re-serialise a graph file into another format.
int run_convert(util::Cli& cli);

/// `dgc stats` — n / m / degree profile / regularity of a graph file.
int run_stats(util::Cli& cli);

/// `dgc cluster` — run an engine on a graph file; labels + JSON out.
int run_cluster(util::Cli& cli);

/// `dgc partition` — partition a graph file; shard ids + JSON out.
int run_partition(util::Cli& cli);

/// Reads a whitespace-separated per-node shard file (the format `dgc
/// partition --out` writes).  num_shards_hint == 0 infers P as
/// max(shard id) + 1; the result passes graph::validate_partition.
[[nodiscard]] graph::Partition load_partition_file(const std::string& path,
                                                   graph::NodeId num_nodes,
                                                   std::uint32_t num_shards_hint);

/// `dgc verify-checkpoint` — replay a .dgcc checkpoint from its coins
/// and report the first divergence (fault detection).
int run_verify_checkpoint(util::Cli& cli);

}  // namespace dgc::tools
