// dgc — the end-to-end driver binary for the SPAA'17 reproduction.
//
//   dgc generate --type=clustered --n=4000 --k=4 --out=g.dgcg
//   dgc convert  --in=g.dgcg --out=g.metis
//   dgc stats    --in=g.metis
//   dgc cluster  --in=g.dgcg --beta=0.25 --labels_out=labels.txt --json=run.json
//
// Every subcommand prints its flag table with `dgc <verb> --help`.
// Graph files flow through graph/io.hpp (edge list, METIS, binary
// .dgcg; format inferred from the extension or sniffed).
#include <exception>
#include <iostream>
#include <string>

#include "commands.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: dgc <verb> [--flags]\n"
        "\n"
        "verbs:\n"
        "  generate  synthesize a planted instance to a graph file\n"
        "  convert   re-serialise a graph file into another format\n"
        "  stats     print n / m / degree profile of a graph file\n"
        "  cluster   run a clustering engine on a graph file\n"
        "  partition assign nodes to shards (range | bfs | refined\n"
        "            multilevel cut minimisation); shard file + JSON out\n"
        "  verify-checkpoint\n"
        "            replay a .dgcc checkpoint's rounds from coins and\n"
        "            report the first divergence (fault detection)\n"
        "\n"
        "`dgc <verb> --help` lists the verb's flags.  Graph files may be\n"
        "edge lists (.edges/.txt), METIS (.graph/.metis), or the binary\n"
        "format (.dgcg); formats are inferred from the extension and can\n"
        "be forced with --format / --in_format / --out_format.  Text\n"
        "inputs with a .gz suffix decompress transparently when the\n"
        "build has zlib.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgc;
  try {
    util::Cli cli(argc, argv, /*allow_command=*/true);
    const std::string& verb = cli.command();
    if (verb.empty()) {
      print_usage(cli.help_requested() ? std::cout : std::cerr);
      return cli.help_requested() ? 0 : 2;
    }
    if (verb == "generate") return tools::run_generate(cli);
    if (verb == "convert") return tools::run_convert(cli);
    if (verb == "stats") return tools::run_stats(cli);
    if (verb == "cluster") return tools::run_cluster(cli);
    if (verb == "partition") return tools::run_partition(cli);
    if (verb == "verify-checkpoint") return tools::run_verify_checkpoint(cli);
    std::cerr << "dgc: unknown verb '" << verb << "'\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const util::contract_error& e) {
    std::cerr << "dgc: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dgc: " << e.what() << '\n';
    return 1;
  }
}
