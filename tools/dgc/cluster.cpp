// `dgc cluster` — file in, labels out: the full paper pipeline
// (seeding, T load-balancing rounds, local query) on a graph loaded
// through the ingestion layer, with every ClusterConfig and
// HotPathOptions knob exposed as a flag.  Emits a machine-readable JSON
// run summary next to the human-readable report; the CLI smoke test
// asserts the labels match the in-memory quickstart path bit for bit.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "commands.hpp"
#include "core/checkpoint.hpp"
#include "core/distributed_clusterer.hpp"
#include "core/engine.hpp"
#include "core/seeding.hpp"
#include "core/sharded_clusterer.hpp"
#include "core/summary.hpp"
#include "graph/analysis.hpp"
#include "graph/io.hpp"
#include "graph/partitioner.hpp"
#include "metrics/clustering_metrics.hpp"
#include "metrics/graph_metrics.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace dgc::tools {

namespace {

core::EngineKind parse_engine(const std::string& name) {
  if (name == "dense") return core::EngineKind::kDense;
  if (name == "message-passing" || name == "mp") return core::EngineKind::kMessagePassing;
  if (name == "sharded") return core::EngineKind::kSharded;
  DGC_REQUIRE(false, "unknown --engine: " + name + " (expected dense|message-passing|sharded)");
  return core::EngineKind::kDense;  // unreachable
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// SIGTERM/SIGINT land here when --checkpoint is active: the engine
/// finishes the in-flight round, writes a checkpoint, and returns with
/// the result marked interrupted (exit code 75, resumable).
std::atomic<bool> g_stop_requested{false};

void request_stop(int) { g_stop_requested.store(true, std::memory_order_relaxed); }

}  // namespace

void describe_cluster_config(util::Cli& cli) {
  cli.describe("beta", "0.25", "lower bound on min cluster balance (the paper's beta)");
  cli.describe("rounds", "0", "averaging rounds T (0 = spectral estimate via k_hint)");
  cli.describe("k_hint", "0", "cluster count hint for the T estimate");
  cli.describe("rounds_multiplier", "1.0", "scale on the derived T");
  cli.describe("threshold_scale", "1.0", "scale on the query threshold tau");
  cli.describe("rule", "paper", "query rule: paper (min-ID over threshold) | argmax");
  cli.describe("trials", "0", "seeding trials s-bar (0 = the paper's default)");
  cli.describe("trials_scale", "0", "alternative: multiply the paper's default s-bar");
  cli.describe("seed", "42", "master seed; every coin derives from it");
  cli.describe("virtual_degree", "0", "padded degree D for section 4.5 (0 = off)");
  cli.describe("degree_biased_activation", "0", "section 4.5 literal activation bias");
  cli.describe("parallel_coins", "1", "flip/resolve coins block-parallel");
  cli.describe("coin_threads", "0", "coin pool threads (0 = hardware)");
  cli.describe("skip_zero_rows", "1", "skip averaging all-zero row pairs");
  cli.describe("sparse_mode", "auto",
               "load-matrix storage: auto (densify past n/2 active rows)|on|off");
  cli.describe("simd", "1", "AVX2 coin/averaging kernels when available");
  cli.describe("schedule_window", "0",
               "rounds scheduled ahead per window (0 = auto, 1 = classic "
               "per-round loop, >= 2 = windowed tiled apply)");
  cli.describe("tile_cols", "0",
               "dimension-stripe width of the windowed apply (0 = auto "
               "from the L2 size)");
}

core::ClusterConfig parse_cluster_config(util::Cli& cli, std::string* rule_name) {
  core::ClusterConfig config;
  config.beta = cli.get_double("beta", config.beta);
  config.rounds = cli.get_uint64("rounds", 0);
  config.k_hint = static_cast<std::uint32_t>(cli.get_uint64("k_hint", 0));
  config.rounds_multiplier = cli.get_double("rounds_multiplier", config.rounds_multiplier);
  config.threshold_scale = cli.get_double("threshold_scale", config.threshold_scale);
  const std::string rule = cli.get("rule", "paper");
  if (rule == "paper") {
    config.query_rule = core::QueryRule::kPaperMinId;
  } else if (rule == "argmax") {
    config.query_rule = core::QueryRule::kArgmax;
  } else {
    DGC_REQUIRE(false, "unknown --rule: " + rule + " (expected paper|argmax)");
  }
  if (rule_name != nullptr) *rule_name = rule;
  config.seeding_trials = cli.get_uint64("trials", 0);
  const std::uint64_t trials_scale = cli.get_uint64("trials_scale", 0);
  if (trials_scale > 0) {
    DGC_REQUIRE(config.seeding_trials == 0, "--trials and --trials_scale are exclusive");
    config.seeding_trials = trials_scale * core::default_seeding_trials(config.beta);
  }
  config.seed = cli.get_uint64("seed", config.seed);
  config.protocol.virtual_degree = cli.get_uint64("virtual_degree", 0);
  config.protocol.degree_biased_activation = cli.get_bool("degree_biased_activation", false);
  config.hot_path.parallel_coins = cli.get_bool("parallel_coins", true);
  config.hot_path.coin_threads = cli.get_uint64("coin_threads", 0);
  config.hot_path.skip_zero_rows = cli.get_bool("skip_zero_rows", true);
  const std::string sparse = cli.get("sparse_mode", "auto");
  if (sparse == "auto") {
    config.hot_path.sparse_mode = matching::SparseMode::kAuto;
  } else if (sparse == "on") {
    config.hot_path.sparse_mode = matching::SparseMode::kOn;
  } else if (sparse == "off") {
    config.hot_path.sparse_mode = matching::SparseMode::kOff;
  } else {
    DGC_REQUIRE(false, "unknown --sparse_mode: " + sparse + " (expected auto|on|off)");
  }
  config.hot_path.simd = cli.get_bool("simd", true);
  config.hot_path.schedule_window = cli.get_uint64("schedule_window", 0);
  config.hot_path.tile_cols = cli.get_uint64("tile_cols", 0);
  return config;
}

int run_cluster(util::Cli& cli) {
  cli.describe("in", "", "input graph file (required; text .gz decompresses "
                         "transparently in zlib builds)");
  cli.describe("format", "auto", "input format: auto|edges|metis|binary");
  cli.describe("weights", "auto",
               "edge-list weight column: auto (header-driven)|yes|no");
  cli.describe("drop-isolated", "0",
               "strip degree-0 nodes before clustering; their output labels "
               "are the unclustered sentinel");
  cli.describe("engine", "dense", "execution engine: dense|message-passing|sharded");
  cli.describe("shards", "0",
               "shard count P for --engine=sharded (0 = hardware), or the "
               "accounting partition size for --engine=message-passing");
  cli.describe("partition", "range",
               "node partitioner for --shards: range|bfs|refined "
               "(multilevel cut minimisation)");
  cli.describe("partition_file", "",
               "per-node shard file (from `dgc partition --out`); overrides "
               "--partition");
  describe_cluster_config(cli);
  cli.describe("checkpoint", "", "checkpoint file (.dgcc); enables SIGTERM-to-"
               "checkpoint (exit 75 = resumable)");
  cli.describe("checkpoint-every", "0", "also checkpoint every R completed rounds");
  cli.describe("resume", "0", "resume from --checkpoint if it exists");
  cli.describe("stop_after_round", "0",
               "checkpoint and exit (code 75) after this completed round");
  cli.describe("round_sleep_ms", "0",
               "test aid: sleep after every round (widens the signal window)");
  cli.describe("labels_out", "", "write one label per node line");
  cli.describe("json", "", "write a machine-readable run summary");
  if (cli.help_requested()) {
    std::cout << "usage: dgc cluster --in=FILE [--flags]\n\n";
    cli.print_help(std::cout);
    return 0;
  }

  const std::string in = cli.get("in", "");
  const auto format = graph::parse_format(cli.get("format", "auto"));
  const auto weights = graph::parse_weight_mode(cli.get("weights", "auto"));
  // Both spellings are accepted; the underscore form matches the other
  // flags, the dash form the documented name.
  const bool drop_isolated =
      cli.get_bool("drop-isolated", false) || cli.get_bool("drop_isolated", false);
  const std::string engine_name = cli.get("engine", "dense");
  const auto shards = static_cast<std::uint32_t>(cli.get_uint64("shards", 0));
  const std::string partition_name = cli.get("partition", "range");
  const std::string partition_file = cli.get("partition_file", "");

  std::string rule;
  core::ClusterConfig config = parse_cluster_config(cli, &rule);
  config.checkpoint.path = cli.get("checkpoint", "");
  config.checkpoint.every =
      std::max(cli.get_uint64("checkpoint-every", 0), cli.get_uint64("checkpoint_every", 0));
  config.checkpoint.resume = cli.get_bool("resume", false);
  config.checkpoint.stop_after_round = cli.get_uint64("stop_after_round", 0);
  config.checkpoint.round_sleep_ms = cli.get_uint64("round_sleep_ms", 0);
  if (!config.checkpoint.path.empty()) {
    config.checkpoint.stop = &g_stop_requested;
    std::signal(SIGTERM, request_stop);
    std::signal(SIGINT, request_stop);
  }
  const std::string labels_out = cli.get("labels_out", "");
  const std::string json_out = cli.get("json", "");
  cli.reject_unknown();
  DGC_REQUIRE(!in.empty(), "--in is required");
  const core::EngineKind kind = parse_engine(engine_name);
  const bool partition_requested =
      shards != 0 || partition_name != "range" || !partition_file.empty();
  DGC_REQUIRE(!partition_requested || kind != core::EngineKind::kDense,
              "--shards/--partition/--partition_file apply to the sharded and "
              "message-passing engines");

  util::Timer timer;
  const graph::Graph loaded = graph::load_graph(in, format, weights);
  const double load_seconds = timer.seconds();
  DGC_REQUIRE(loaded.num_nodes() > 0, "refusing to cluster an empty graph: " + in);

  // --drop-isolated: cluster the compacted graph, then map the labels
  // back to the original ids (isolated nodes report unclustered).
  graph::CompactedGraph compacted;
  std::size_t isolated_dropped = 0;
  if (drop_isolated && loaded.min_degree() == 0) {
    compacted = graph::drop_isolated(loaded);
    isolated_dropped = loaded.num_nodes() - compacted.graph.num_nodes();
  }
  const graph::Graph& g = isolated_dropped > 0 ? compacted.graph : loaded;
  DGC_REQUIRE(g.num_nodes() > 0,
              "every node is isolated; nothing to cluster: " + in);
  DGC_REQUIRE(g.min_degree() > 0,
              "graph has isolated nodes; the matching protocol needs degree >= 1 "
              "(pass --drop-isolated to strip them)");

  DGC_REQUIRE(partition_file.empty() || isolated_dropped == 0,
              "--partition_file indexes the loaded node ids; --drop-isolated "
              "renumbers them (partition the compacted graph instead)");

  // Partition quality + traffic accounting, echoed when the run was
  // sharded (always) or message-passing with partition flags.
  struct PartitionSummary {
    bool present = false;
    std::string mode;  // range|bfs|refined|file
    std::uint32_t shards = 0;
    std::uint64_t edge_cut = 0;
    double cut_weight = 0.0;
    double imbalance = 0.0;
    std::uint64_t cross_words = 0;
    std::uint64_t cross_messages = 0;
    std::uint64_t intra_pairs = 0;  // sharded engine only
    std::uint64_t cross_pairs = 0;
  } part;
  const std::string mode_label =
      !partition_file.empty() ? "file" : partition_name;

  std::string engine_label;
  core::ClusterResult result;
  timer.reset();
  if (kind == core::EngineKind::kSharded) {
    core::ShardOptions shard_options;
    shard_options.shards = shards;
    shard_options.mode = graph::parse_partition_mode(partition_name);
    graph::Partition external;
    if (!partition_file.empty()) {
      external = load_partition_file(partition_file, g.num_nodes(), shards);
      shard_options.partition = &external;
    }
    const core::ShardedClusterer sharded(g, config, shard_options);
    engine_label = std::string(sharded.name());
    core::ShardedReport report = sharded.run();
    result = std::move(report.result);
    part.present = true;
    part.mode = mode_label;
    part.shards = sharded.resolved_shards();
    part.edge_cut = report.partition_edge_cut;
    part.cut_weight = report.partition_cut_weight;
    part.imbalance = report.partition_imbalance;
    part.cross_words = report.traffic.words;
    part.cross_messages = report.traffic.messages;
    part.intra_pairs = report.intra_pairs;
    part.cross_pairs = report.cross_pairs;
  } else if (kind == core::EngineKind::kMessagePassing && partition_requested) {
    graph::Partition partition;
    if (!partition_file.empty()) {
      partition = load_partition_file(partition_file, g.num_nodes(), shards);
    } else {
      std::uint32_t p = shards != 0 ? shards
                                    : std::max<std::uint32_t>(
                                          1, std::thread::hardware_concurrency());
      p = std::min<std::uint32_t>(p, g.num_nodes());
      partition =
          graph::partition_graph(g, p, graph::parse_partition_mode(partition_name));
    }
    const core::DistributedClusterer mp(g, config);
    engine_label = std::string(mp.name());
    core::DistributedReport report = mp.run(0.0, &partition);
    result = std::move(report.result);
    part.present = true;
    part.mode = mode_label;
    part.shards = partition.num_shards;
    part.edge_cut = metrics::edge_cut(g, partition.shard_of);
    part.cut_weight = metrics::edge_cut_weight(g, partition.shard_of);
    part.imbalance =
        metrics::partition_imbalance(partition.shard_of, partition.num_shards);
    part.cross_words = report.cross_partition_words;
    part.cross_messages = report.cross_partition_messages;
  } else {
    const auto engine = core::make_engine(kind, g, config);
    engine_label = std::string(engine->name());
    result = engine->cluster();
  }
  const double cluster_seconds = timer.seconds();

  const auto summary = core::summarize_partition(g, result.labels);
  // Interrupted runs never publish labels: their run state lives in the
  // checkpoint, and partial labels on disk would be indistinguishable
  // from final ones.
  if (!labels_out.empty() && !result.interrupted) {
    if (isolated_dropped > 0) {
      // Map labels back to the original id space; dropped nodes report
      // the unclustered sentinel.
      std::vector<std::uint64_t> output_labels(loaded.num_nodes(),
                                               metrics::kUnclustered);
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        output_labels[compacted.original_of[v]] = result.labels[v];
      }
      core::save_labels(labels_out, output_labels);
    } else {
      core::save_labels(labels_out, result.labels);
    }
  }

  std::printf("file              %s\n", in.c_str());
  std::printf("engine            %s\n", engine_label.c_str());
  std::printf("nodes             %u\n", loaded.num_nodes());
  std::printf("edges             %zu\n", loaded.num_edges());
  std::printf("weighted          %s\n", loaded.is_weighted() ? "yes" : "no");
  if (drop_isolated) std::printf("dropped isolated  %zu\n", isolated_dropped);
  if (part.present) {
    std::printf("partition         %s x %u (cut %llu, imbalance %.4f)\n",
                part.mode.c_str(), part.shards,
                static_cast<unsigned long long>(part.edge_cut), part.imbalance);
    std::printf("cross-shard words %llu\n",
                static_cast<unsigned long long>(part.cross_words));
  }
  std::printf("seeds drawn       %zu\n", result.seeds.size());
  std::printf("rounds T          %zu\n", result.rounds);
  if (result.resumed) std::printf("resumed at round  %zu\n", result.resume_round);
  if (result.checkpoint_round > 0) {
    std::printf("checkpoint round  %zu (%s)\n", result.checkpoint_round,
                config.checkpoint.path.c_str());
  }
  if (result.interrupted) {
    std::printf("interrupted       yes (resume with --resume to finish)\n");
  }
  std::printf("recovered k       %u\n", summary.num_clusters);
  std::printf("unclustered       %zu\n", summary.unclustered);
  std::printf("beta_hat          %.4f\n", summary.beta_hat);
  std::printf("rho_hat           %.4f\n", summary.rho_hat);
  std::printf("load_seconds      %.3f\n", load_seconds);
  std::printf("cluster_seconds   %.3f\n", cluster_seconds);
  // schedule covers the matching draws (fused flip + resolve in the
  // windowed executor; the unfused split stays 0 outside bench runs).
  std::printf("phase_seconds     schedule %.3f  apply %.3f  query %.3f\n",
              result.phase_seconds.schedule, result.phase_seconds.apply,
              result.phase_seconds.query);
  if (!labels_out.empty() && !result.interrupted) {
    std::printf("wrote %s\n", labels_out.c_str());
  }

  if (!json_out.empty()) {
    std::string out;
    out += "{\n  \"tool\": \"dgc-cluster\",\n  \"input\": ";
    append_json_string(out, in);
    out += ",\n  \"engine\": ";
    append_json_string(out, engine_label);
    out += ",\n  \"nodes\": " + std::to_string(loaded.num_nodes());
    out += ",\n  \"edges\": " + std::to_string(loaded.num_edges());
    out += ",\n  \"weighted\": ";
    out += loaded.is_weighted() ? "true" : "false";
    out += ",\n  \"total_weight\": ";
    append_json_double(out, loaded.total_weight());
    out += ",\n  \"dropped_isolated\": " + std::to_string(isolated_dropped);
    if (part.present) {
      out += ",\n  \"partition\": {\n    \"mode\": ";
      append_json_string(out, part.mode);
      out += ",\n    \"shards\": " + std::to_string(part.shards);
      out += ",\n    \"edge_cut\": " + std::to_string(part.edge_cut);
      out += ",\n    \"cut_weight\": ";
      append_json_double(out, part.cut_weight);
      out += ",\n    \"imbalance\": ";
      append_json_double(out, part.imbalance);
      out += ",\n    \"cross_words\": " + std::to_string(part.cross_words);
      out += ",\n    \"cross_messages\": " + std::to_string(part.cross_messages);
      out += ",\n    \"intra_pairs\": " + std::to_string(part.intra_pairs);
      out += ",\n    \"cross_pairs\": " + std::to_string(part.cross_pairs);
      out += "\n  }";
    }
    out += ",\n  \"config\": {\n    \"beta\": ";
    append_json_double(out, config.beta);
    out += ",\n    \"rounds\": " + std::to_string(config.rounds);
    out += ",\n    \"k_hint\": " + std::to_string(config.k_hint);
    out += ",\n    \"rounds_multiplier\": ";
    append_json_double(out, config.rounds_multiplier);
    out += ",\n    \"threshold_scale\": ";
    append_json_double(out, config.threshold_scale);
    out += ",\n    \"rule\": ";
    append_json_string(out, rule);
    out += ",\n    \"seeding_trials\": " + std::to_string(config.seeding_trials);
    out += ",\n    \"seed\": " + std::to_string(config.seed);
    out += ",\n    \"sparse_mode\": ";
    append_json_string(out,
                       config.hot_path.sparse_mode == matching::SparseMode::kAuto
                           ? "auto"
                           : config.hot_path.sparse_mode == matching::SparseMode::kOn
                                 ? "on"
                                 : "off");
    out += ",\n    \"simd\": ";
    out += config.hot_path.simd ? "true" : "false";
    out += ",\n    \"simd_kernel\": ";
    append_json_string(out, matching::simd::kernel_name(config.hot_path.simd));
    out += ",\n    \"schedule_window\": " + std::to_string(config.hot_path.schedule_window);
    out += ",\n    \"tile_cols\": " + std::to_string(config.hot_path.tile_cols);
    out += "\n  },\n  \"result\": {\n    \"seeds\": " + std::to_string(result.seeds.size());
    out += ",\n    \"rounds\": " + std::to_string(result.rounds);
    out += ",\n    \"threshold\": ";
    append_json_double(out, result.threshold);
    out += ",\n    \"lambda_k1\": ";
    append_json_double(out, result.lambda_k1);
    out += ",\n    \"recovered_clusters\": " + std::to_string(summary.num_clusters);
    out += ",\n    \"unclustered\": " + std::to_string(summary.unclustered);
    out += ",\n    \"beta_hat\": ";
    append_json_double(out, summary.beta_hat);
    out += ",\n    \"rho_hat\": ";
    append_json_double(out, summary.rho_hat);
    out += ",\n    \"resumed\": ";
    out += result.resumed ? "true" : "false";
    out += ",\n    \"resume_round\": " + std::to_string(result.resume_round);
    out += ",\n    \"interrupted\": ";
    out += result.interrupted ? "true" : "false";
    out += ",\n    \"checkpoint_round\": " + std::to_string(result.checkpoint_round);
    out += "\n  },\n  \"timing\": {\n    \"load_seconds\": ";
    append_json_double(out, load_seconds);
    out += ",\n    \"cluster_seconds\": ";
    append_json_double(out, cluster_seconds);
    out += ",\n    \"phase_seconds\": {\n      \"schedule\": ";
    append_json_double(out, result.phase_seconds.schedule);
    out += ",\n      \"flip\": ";
    append_json_double(out, result.phase_seconds.flip);
    out += ",\n      \"resolve\": ";
    append_json_double(out, result.phase_seconds.resolve);
    out += ",\n      \"apply\": ";
    append_json_double(out, result.phase_seconds.apply);
    out += ",\n      \"query\": ";
    append_json_double(out, result.phase_seconds.query);
    out += "\n    }\n  }\n}\n";
    std::ofstream os(json_out, std::ios::trunc);
    DGC_REQUIRE(os.good(), "cannot open for writing: " + json_out);
    os << out;
    DGC_REQUIRE(os.good(), "failed to write: " + json_out);
    std::printf("wrote %s\n", json_out.c_str());
  }
  // An interrupted run wrote a checkpoint, not final labels: signal
  // "resumable" (EX_TEMPFAIL) so wrappers re-invoke with --resume.
  return result.interrupted ? core::kResumableExitCode : 0;
}

}  // namespace dgc::tools
