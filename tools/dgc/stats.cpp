// `dgc stats` — the quantities the algorithm's preconditions care
// about: size, degree profile (the paper's protocol is pitched at
// regular and almost-regular graphs; §4.5 needs max/min degree
// bounded), and isolated nodes (never matched, never clustered).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "commands.hpp"
#include "graph/io.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace dgc::tools {

int run_stats(util::Cli& cli) {
  cli.describe("in", "", "input graph file (required)");
  cli.describe("format", "auto", "input format: auto|edges|metis|binary");
  cli.describe("weights", "auto",
               "edge-list weight column: auto (header-driven)|yes|no");
  if (cli.help_requested()) {
    std::cout << "usage: dgc stats --in=FILE [--flags]\n\n";
    cli.print_help(std::cout);
    return 0;
  }

  const std::string in = cli.get("in", "");
  const auto format = graph::parse_format(cli.get("format", "auto"));
  const auto weights = graph::parse_weight_mode(cli.get("weights", "auto"));
  cli.reject_unknown();
  DGC_REQUIRE(!in.empty(), "--in is required");

  util::Timer timer;
  const graph::Graph g = graph::load_graph(in, format, weights);
  const double load_seconds = timer.seconds();

  std::size_t isolated = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) isolated += g.degree(v) == 0;
  const double avg_degree =
      g.num_nodes() == 0 ? 0.0
                         : static_cast<double>(g.adjacency().size()) /
                               static_cast<double>(g.num_nodes());

  std::printf("file         %s\n", in.c_str());
  std::printf("nodes        %u\n", g.num_nodes());
  std::printf("edges        %zu\n", g.num_edges());
  std::printf("min_degree   %zu\n", g.min_degree());
  std::printf("max_degree   %zu\n", g.max_degree());
  std::printf("avg_degree   %.3f\n", avg_degree);
  std::printf("regular      %s\n", g.is_regular() ? "yes" : "no");
  std::printf("isolated     %zu\n", isolated);
  std::printf("weighted     %s\n", g.is_weighted() ? "yes" : "no");
  if (g.is_weighted()) {
    double min_weight = g.max_weight();
    for (const double w : g.weights()) min_weight = std::min(min_weight, w);
    std::printf("total_weight %.6g\n", g.total_weight());
    std::printf("min_weight   %.6g\n", min_weight);
    std::printf("max_weight   %.6g\n", g.max_weight());
  }
  std::printf("load_seconds %.3f\n", load_seconds);
  return 0;
}

}  // namespace dgc::tools
