# Kill-and-resume integration test for the checkpoint/restart subsystem,
# run by ctest (see tools/CMakeLists.txt).  For every engine:
#
#   * SIGTERM leg — start `dgc cluster --checkpoint=...` with a widened
#     round window (--round_sleep_ms), SIGTERM it mid-run, assert the
#     resumable exit code (75), then `--resume` and assert the labels are
#     byte-identical to an uninterrupted run of the same config.
#
#   * SIGKILL leg (dense engine) — same chase with `kill -9` and
#     --checkpoint-every=1, so the process dies with checkpoint writes
#     in flight.  Whatever .dgcc file survives must still pass
#     `dgc verify-checkpoint` (CRC + full coin replay): the atomic
#     temp-file + rename protocol never publishes a torn file.  Resuming
#     it must again reproduce the uninterrupted labels byte for byte.
#
# The resumed run's JSON summary is validated too (resumed=true,
# checkpoint_round carried through).  Signal delivery needs a shell, so
# the chase legs run through `bash -c`; tools/CMakeLists.txt only
# registers this test on UNIX.
#
# Expects -DDGC_CLI=<dgc binary> -DWORK_DIR=<scratch dir>.

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

# Starts CMD_LINE in the background, sends SIGNAL after one second, and
# asserts the process exits with EXPECT_CODE.
function(chase_with_signal signal expect_code cmd_line)
  execute_process(
    COMMAND bash -c "${cmd_line} & pid=$!; sleep 1; kill -${signal} $pid; wait $pid"
    RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL ${expect_code})
    message(FATAL_ERROR "SIG${signal} leg: expected exit ${expect_code}, got ${code}\n"
                        "command: ${cmd_line}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

run_checked(${DGC_CLI} generate --type=clustered --n=400 --k=4 --seed=5
            --out=${WORK_DIR}/g.dgcg)

# Shared run config: enough rounds that --round_sleep_ms=5 keeps the run
# alive well past the 1 s signal (>= 1.5 s of sleeps alone), cheap enough
# that the uninterrupted baseline and the resumed tail are instant.
set(CFG --in=${WORK_DIR}/g.dgcg --beta=0.25 --rounds=300 --trials=8 --seed=5)

foreach(engine dense message-passing sharded)
  set(ckpt ${WORK_DIR}/${engine}.dgcc)

  # Uninterrupted baseline for this engine.
  run_checked(${DGC_CLI} cluster ${CFG} --engine=${engine}
              --labels_out=${WORK_DIR}/${engine}_baseline.txt)

  # SIGTERM mid-run: finish the in-flight round, checkpoint, exit 75.
  string(JOIN " " cmd ${DGC_CLI} cluster ${CFG} --engine=${engine}
         --checkpoint=${ckpt} --round_sleep_ms=5
         --labels_out=${WORK_DIR}/${engine}_resumed.txt)
  chase_with_signal(TERM 75 "${cmd}")
  if(NOT EXISTS ${ckpt})
    message(FATAL_ERROR "${engine}: SIGTERM exit left no checkpoint at ${ckpt}")
  endif()
  if(EXISTS ${WORK_DIR}/${engine}_resumed.txt)
    message(FATAL_ERROR "${engine}: interrupted run must not publish labels")
  endif()

  # The interrupted state must verify green (CRC + coin replay).
  run_checked(${DGC_CLI} verify-checkpoint --in=${WORK_DIR}/g.dgcg
              --checkpoint=${ckpt} --beta=0.25 --rounds=300 --trials=8 --seed=5)

  # Resume to completion: byte-identical labels, honest JSON provenance.
  run_checked(${DGC_CLI} cluster ${CFG} --engine=${engine}
              --checkpoint=${ckpt} --resume=1
              --labels_out=${WORK_DIR}/${engine}_resumed.txt
              --json=${WORK_DIR}/${engine}_resumed.json)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/${engine}_baseline.txt
                  ${WORK_DIR}/${engine}_resumed.txt RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${engine}: resumed labels differ from the uninterrupted run")
  endif()
  file(READ ${WORK_DIR}/${engine}_resumed.json summary)
  string(JSON was_resumed GET "${summary}" result resumed)
  string(JSON resume_round GET "${summary}" result resume_round)
  string(JSON was_interrupted GET "${summary}" result interrupted)
  if(NOT was_resumed STREQUAL "ON" OR was_interrupted STREQUAL "ON"
     OR resume_round LESS 1)
    message(FATAL_ERROR "${engine}: JSON provenance wrong: resumed=${was_resumed} "
                        "resume_round=${resume_round} interrupted=${was_interrupted}")
  endif()
endforeach()

# ---------------------------------------------------------------------------
# SIGKILL leg: no handler runs, checkpoint writes are mid-flight every
# round — the rename protocol must still never publish a torn file.

set(ckpt ${WORK_DIR}/kill9.dgcc)
string(JOIN " " cmd ${DGC_CLI} cluster ${CFG} --engine=dense
       --checkpoint=${ckpt} --checkpoint-every=1 --round_sleep_ms=5)
chase_with_signal(KILL 137 "${cmd}")
if(NOT EXISTS ${ckpt})
  message(FATAL_ERROR "SIGKILL leg: no checkpoint survived at ${ckpt}")
endif()
run_checked(${DGC_CLI} verify-checkpoint --in=${WORK_DIR}/g.dgcg
            --checkpoint=${ckpt} --beta=0.25 --rounds=300 --trials=8 --seed=5)
run_checked(${DGC_CLI} cluster ${CFG} --engine=dense --checkpoint=${ckpt} --resume=1
            --labels_out=${WORK_DIR}/kill9_resumed.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/dense_baseline.txt ${WORK_DIR}/kill9_resumed.txt
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "SIGKILL leg: resumed labels differ from the uninterrupted run")
endif()

message(STATUS "dgc kill-and-resume test passed")
