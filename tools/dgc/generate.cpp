// `dgc generate` — synthesize the evaluation's instance families to a
// file, so the `convert` / `stats` / `cluster` verbs (and any external
// tool reading edge lists or METIS) have real inputs to chew on.
//
// The `clustered` family with default --degree/--phi reproduces the
// quickstart example's instance exactly (same spec, same Rng stream),
// which is what lets the CLI smoke test assert file-path-vs-in-memory
// label identity.
#include <cstdio>
#include <iostream>
#include <vector>

#include "commands.hpp"
#include "core/summary.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dgc::tools {

int run_generate(util::Cli& cli) {
  cli.describe("type", "clustered", "instance family: clustered|sbm|ring|regular");
  cli.describe("n", "4000", "total number of nodes");
  cli.describe("k", "4", "number of planted clusters (ignored by `regular`)");
  cli.describe("degree", "16", "node degree (clustered/regular)");
  cli.describe("phi", "0.02", "target per-cluster conductance (clustered)");
  cli.describe("p_in", "0.02", "intra-block edge probability (sbm)");
  cli.describe("p_out", "0.002", "inter-block edge probability (sbm)");
  cli.describe("weighted", "0", "emit edge weights (clustered/sbm)");
  cli.describe("w_in", "1.0", "intra-cluster edge weight (with --weighted)");
  cli.describe("w_out", "1.0", "inter-cluster edge weight (with --weighted)");
  cli.describe("seed", "1", "generator seed");
  cli.describe("out", "", "output graph file (required)");
  cli.describe("format", "auto", "output format: auto|edges|metis|binary");
  cli.describe("labels_out", "", "also write the planted membership, one label per line");
  if (cli.help_requested()) {
    std::cout << "usage: dgc generate --out=FILE [--flags]\n\n";
    cli.print_help(std::cout);
    return 0;
  }

  const std::string type = cli.get("type", "clustered");
  const auto n = static_cast<graph::NodeId>(cli.get_uint64("n", 4000));
  const auto k = static_cast<std::uint32_t>(cli.get_uint64("k", 4));
  const auto degree = static_cast<std::size_t>(cli.get_uint64("degree", 16));
  const double phi = cli.get_double("phi", 0.02);
  const double p_in = cli.get_double("p_in", 0.02);
  const double p_out = cli.get_double("p_out", 0.002);
  const bool weighted = cli.get_bool("weighted", false);
  const double w_in = cli.get_double("w_in", 1.0);
  const double w_out = cli.get_double("w_out", 1.0);
  const std::uint64_t seed = cli.get_uint64("seed", 1);
  const std::string out = cli.get("out", "");
  const auto format = graph::parse_format(cli.get("format", "auto"));
  const std::string labels_out = cli.get("labels_out", "");
  cli.reject_unknown();
  DGC_REQUIRE(!out.empty(), "--out is required");
  DGC_REQUIRE(k >= 1, "--k must be at least 1");
  DGC_REQUIRE(!weighted || type == "clustered" || type == "sbm",
              "--weighted is only supported for clustered|sbm");

  util::Rng rng(seed);
  util::Timer timer;
  graph::Graph g;
  std::vector<std::uint32_t> membership;
  if (type == "clustered") {
    graph::ClusteredRegularSpec spec;
    spec.cluster_sizes.assign(k, n / k);
    spec.degree = degree;
    spec.inter_cluster_swaps = graph::swaps_for_conductance(spec, phi);
    spec.weighted = weighted;
    spec.intra_weight = w_in;
    spec.inter_weight = w_out;
    auto planted = graph::clustered_regular(spec, rng);
    g = std::move(planted.graph);
    membership = std::move(planted.membership);
  } else if (type == "sbm") {
    graph::SbmSpec spec;
    spec.nodes_per_cluster = n / k;
    spec.clusters = k;
    spec.p_in = p_in;
    spec.p_out = p_out;
    spec.weighted = weighted;
    spec.intra_weight = w_in;
    spec.inter_weight = w_out;
    auto planted = graph::stochastic_block_model(spec, rng);
    g = std::move(planted.graph);
    membership = std::move(planted.membership);
  } else if (type == "ring") {
    auto planted = graph::ring_of_cliques(k, n / k);
    g = std::move(planted.graph);
    membership = std::move(planted.membership);
  } else if (type == "regular") {
    g = graph::random_regular(n, degree, rng);
  } else {
    DGC_REQUIRE(false, "unknown --type: " + type + " (expected clustered|sbm|ring|regular)");
  }
  const double generate_seconds = timer.seconds();

  timer.reset();
  graph::save_graph(out, g, format);
  if (!labels_out.empty()) {
    DGC_REQUIRE(!membership.empty(), "--labels_out needs a planted family (not `regular`)");
    std::vector<std::uint64_t> wide(membership.begin(), membership.end());
    core::save_labels(labels_out, wide);
  }

  std::printf("generated %s  n=%u  m=%zu%s  (%.3fs generate, %.3fs write)\n", type.c_str(),
              g.num_nodes(), g.num_edges(), g.is_weighted() ? "  weighted" : "",
              generate_seconds, timer.seconds());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace dgc::tools
