# End-to-end smoke test for the `dgc` CLI, run by ctest (see
# tools/CMakeLists.txt).  Drives the real binary through
# generate -> convert -> stats -> cluster and asserts:
#   * converting .dgcg -> edge list -> METIS -> .dgcg reproduces the
#     original binary file byte for byte;
#   * the cluster JSON summary is well-formed (CMake's string(JSON));
#   * `dgc cluster` on the generated *file* emits exactly the labels the
#     in-memory quickstart path computes for the same instance, seed,
#     and config — ingestion must not perturb a single coin.
#
# Expects -DDGC_CLI=<dgc binary> -DQUICKSTART=<example_quickstart binary
# or empty> -DWORK_DIR=<scratch dir>.

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# Quickstart's instance: n=400, k=4, seed=1, degree 16, phi 0.02.
run_checked(${DGC_CLI} generate --type=clustered --n=400 --k=4 --seed=1
            --out=${WORK_DIR}/g.dgcg --labels_out=${WORK_DIR}/planted.txt)

# Unknown flags must fail loudly.
execute_process(COMMAND ${DGC_CLI} generate --typ=clustered --out=${WORK_DIR}/x.dgcg
                RESULT_VARIABLE typo_code OUTPUT_QUIET ERROR_QUIET)
if(typo_code EQUAL 0)
  message(FATAL_ERROR "dgc generate accepted a misspelled flag (--typ)")
endif()

# Format round trip: binary -> edges -> metis -> binary, byte-identical.
run_checked(${DGC_CLI} convert --in=${WORK_DIR}/g.dgcg --out=${WORK_DIR}/g.edges)
run_checked(${DGC_CLI} convert --in=${WORK_DIR}/g.edges --out=${WORK_DIR}/g.metis)
run_checked(${DGC_CLI} convert --in=${WORK_DIR}/g.metis --out=${WORK_DIR}/g2.dgcg)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/g.dgcg ${WORK_DIR}/g2.dgcg RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "binary -> edges -> metis -> binary round trip changed the file")
endif()

# Stats reads every format and reports the regular planted instance.
run_checked(${DGC_CLI} stats --in=${WORK_DIR}/g.metis)
if(NOT LAST_OUTPUT MATCHES "nodes +400" OR NOT LAST_OUTPUT MATCHES "regular +yes")
  message(FATAL_ERROR "unexpected stats output:\n${LAST_OUTPUT}")
endif()

# Cluster from the file; quickstart's config is beta=1/k, k_hint=k,
# rounds_multiplier=2, trials = 2 * s_bar, seed=1.
run_checked(${DGC_CLI} cluster --in=${WORK_DIR}/g.dgcg --engine=dense --beta=0.25
            --k_hint=4 --rounds_multiplier=2 --trials_scale=2 --seed=1
            --labels_out=${WORK_DIR}/labels_cli.txt --json=${WORK_DIR}/summary.json)

# The JSON summary must parse and carry the tool marker + node count.
file(READ ${WORK_DIR}/summary.json summary)
string(JSON tool GET "${summary}" tool)
string(JSON nodes GET "${summary}" nodes)
string(JSON unclustered GET "${summary}" result unclustered)
if(NOT tool STREQUAL "dgc-cluster" OR NOT nodes EQUAL 400)
  message(FATAL_ERROR "unexpected JSON summary: tool=${tool} nodes=${nodes}")
endif()

# Loading the edge-list rendering must yield the same labels as the
# binary file (bit-identical CSR either way).
run_checked(${DGC_CLI} cluster --in=${WORK_DIR}/g.edges --engine=dense --beta=0.25
            --k_hint=4 --rounds_multiplier=2 --trials_scale=2 --seed=1
            --labels_out=${WORK_DIR}/labels_cli_edges.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/labels_cli.txt ${WORK_DIR}/labels_cli_edges.txt
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "labels differ between binary and edge-list inputs")
endif()

# File path vs in-memory quickstart path: identical labels.
if(QUICKSTART)
  run_checked(${QUICKSTART} --n=400 --k=4 --seed=1
              --labels_out=${WORK_DIR}/labels_memory.txt)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/labels_cli.txt ${WORK_DIR}/labels_memory.txt
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "dgc cluster (file) and quickstart (memory) labels differ")
  endif()
endif()

# ---------------------------------------------------------------------------
# Weighted chain: generate --weighted, byte-identical format round trip,
# stats reporting weights, cluster consuming the weighted file.

run_checked(${DGC_CLI} generate --type=clustered --n=400 --k=4 --seed=1 --weighted
            --w_in=2.5 --w_out=0.5 --out=${WORK_DIR}/w.dgcg)

run_checked(${DGC_CLI} convert --in=${WORK_DIR}/w.dgcg --out=${WORK_DIR}/w.edges)
run_checked(${DGC_CLI} convert --in=${WORK_DIR}/w.edges --out=${WORK_DIR}/w.metis)
run_checked(${DGC_CLI} convert --in=${WORK_DIR}/w.metis --out=${WORK_DIR}/w2.dgcg)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/w.dgcg ${WORK_DIR}/w2.dgcg RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "weighted binary -> edges -> metis -> binary round trip changed the file")
endif()

run_checked(${DGC_CLI} stats --in=${WORK_DIR}/w.metis)
if(NOT LAST_OUTPUT MATCHES "weighted +yes" OR NOT LAST_OUTPUT MATCHES "max_weight +2.5")
  message(FATAL_ERROR "unexpected weighted stats output:\n${LAST_OUTPUT}")
endif()

run_checked(${DGC_CLI} cluster --in=${WORK_DIR}/w.dgcg --engine=dense --beta=0.25
            --rounds=80 --trials_scale=2 --seed=1
            --labels_out=${WORK_DIR}/labels_weighted.txt --json=${WORK_DIR}/wsummary.json)
file(READ ${WORK_DIR}/wsummary.json wsummary)
string(JSON w_weighted GET "${wsummary}" weighted)
if(NOT w_weighted STREQUAL "ON")  # string(JSON) renders JSON true as ON
  message(FATAL_ERROR "weighted cluster summary did not report weighted=true: ${w_weighted}")
endif()

# The weighted labels must load identically from the edge-list rendering
# (its '# weighted' header re-arms the weight column without flags).
run_checked(${DGC_CLI} cluster --in=${WORK_DIR}/w.edges --engine=dense --beta=0.25
            --rounds=80 --trials_scale=2 --seed=1
            --labels_out=${WORK_DIR}/labels_weighted_edges.txt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/labels_weighted.txt ${WORK_DIR}/labels_weighted_edges.txt
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "weighted labels differ between binary and edge-list inputs")
endif()

# ---------------------------------------------------------------------------
# --drop-isolated: a raw edge list with an isolated trailing node runs
# unedited and reports the isolated node as unclustered.

# Node 9 exists only through the header: it is isolated.
file(WRITE ${WORK_DIR}/iso.edges
     "# nodes 10\n0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n6 7\n7 8\n8 6\n")
execute_process(COMMAND ${DGC_CLI} cluster --in=${WORK_DIR}/iso.edges --rounds=10
                RESULT_VARIABLE iso_code OUTPUT_QUIET ERROR_QUIET)
if(iso_code EQUAL 0)
  message(FATAL_ERROR "dgc cluster accepted an isolated node without --drop-isolated")
endif()
run_checked(${DGC_CLI} cluster --in=${WORK_DIR}/iso.edges --drop-isolated --rounds=20
            --beta=0.3 --trials=4 --rule=argmax --seed=3
            --labels_out=${WORK_DIR}/iso_labels.txt --json=${WORK_DIR}/iso.json)
file(READ ${WORK_DIR}/iso.json iso_json)
string(JSON iso_nodes GET "${iso_json}" nodes)
string(JSON iso_dropped GET "${iso_json}" dropped_isolated)
if(NOT iso_nodes EQUAL 10 OR NOT iso_dropped EQUAL 1)
  message(FATAL_ERROR "drop-isolated summary wrong: nodes=${iso_nodes} dropped=${iso_dropped}")
endif()
file(STRINGS ${WORK_DIR}/iso_labels.txt iso_labels)
list(LENGTH iso_labels iso_label_count)
list(GET iso_labels 9 last_label)
if(NOT iso_label_count EQUAL 10 OR NOT last_label STREQUAL "18446744073709551615")
  message(FATAL_ERROR "drop-isolated labels wrong: count=${iso_label_count} last=${last_label}")
endif()

message(STATUS "dgc CLI smoke test passed")
