// `dgc convert` — re-serialise any supported graph file into any other
// format.  The workhorse for onboarding real datasets: parse the text
// edge list or METIS file once, write .dgcg, and every later run loads
// at memcpy speed.
#include <cstdio>
#include <iostream>

#include "commands.hpp"
#include "graph/io.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace dgc::tools {

int run_convert(util::Cli& cli) {
  cli.describe("in", "", "input graph file (required)");
  cli.describe("out", "", "output graph file (required)");
  cli.describe("in_format", "auto", "input format: auto|edges|metis|binary");
  cli.describe("out_format", "auto", "output format: auto|edges|metis|binary");
  cli.describe("weights", "auto",
               "edge-list weight column: auto (header-driven)|yes|no");
  if (cli.help_requested()) {
    std::cout << "usage: dgc convert --in=A --out=B [--flags]\n\n";
    cli.print_help(std::cout);
    return 0;
  }

  const std::string in = cli.get("in", "");
  const std::string out = cli.get("out", "");
  const auto in_format = graph::parse_format(cli.get("in_format", "auto"));
  const auto out_format = graph::parse_format(cli.get("out_format", "auto"));
  const auto weights = graph::parse_weight_mode(cli.get("weights", "auto"));
  cli.reject_unknown();
  DGC_REQUIRE(!in.empty(), "--in is required");
  DGC_REQUIRE(!out.empty(), "--out is required");

  util::Timer timer;
  const graph::Graph g = graph::load_graph(in, in_format, weights);
  const double load_seconds = timer.seconds();
  timer.reset();
  graph::save_graph(out, g, out_format);

  std::printf("converted n=%u m=%zu%s  (%.3fs load, %.3fs write)\n", g.num_nodes(),
              g.num_edges(), g.is_weighted() ? "  weighted" : "", load_seconds,
              timer.seconds());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace dgc::tools
